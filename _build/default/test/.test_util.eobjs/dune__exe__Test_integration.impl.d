test/test_integration.ml: Alcotest Filename Hashtbl List Pdb_harness Pdb_kvs Pdb_lsm Pdb_manifest Pdb_simio Pdb_util Pdb_ycsb Pebblesdb Printf QCheck QCheck_alcotest String
