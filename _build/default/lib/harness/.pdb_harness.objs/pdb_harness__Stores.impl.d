lib/harness/stores.ml: Fun Pdb_btree Pdb_kvs Pdb_lsm Pdb_simio Pebblesdb
