lib/ycsb/trace.ml: Buffer List Pdb_kvs Pdb_util Pdb_wal Printf Runner String Workload
