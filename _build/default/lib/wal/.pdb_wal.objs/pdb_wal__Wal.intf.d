lib/wal/wal.mli: Pdb_simio
