lib/manifest/manifest.ml: Buffer Filename List Pdb_simio Pdb_sstable Pdb_util Pdb_wal Printf String
