(** Record-oriented write-ahead log (LevelDB log format).

    The log is a sequence of 32 KB blocks; records are framed with
    [crc32c(4) | length(2) | type(1)] headers and fragmented across block
    boundaries with FIRST/MIDDLE/LAST record types.  Both the WAL proper
    (memtable recovery) and the MANIFEST (version-edit recovery) use this
    format. *)

val block_size : int
val header_size : int

type record_type = Full | First | Middle | Last

val type_to_int : record_type -> int
val type_of_int : int -> record_type option

module Writer : sig
  type t

  (** [create env name] starts a fresh log file. *)
  val create : Pdb_simio.Env.t -> string -> t

  (** [of_writer w ~existing_bytes] continues appending to an existing
      file, keeping block alignment. *)
  val of_writer : Pdb_simio.Env.writer -> existing_bytes:int -> t

  (** [add_record t payload] appends one logical record, fragmenting
      across block boundaries as needed. *)
  val add_record : t -> string -> unit

  val sync : t -> unit
  val close : t -> unit
  val size : t -> int
end

module Reader : sig
  (** [read_all env name] returns the complete records recoverable from
      the log, in order, silently dropping a corrupt or truncated tail —
      the expected state after a crash. *)
  val read_all : Pdb_simio.Env.t -> string -> string list
end
