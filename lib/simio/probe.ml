(* See probe.mli.  The refund convention matches the seed parallel-seek
   model: a fully parallel probe paid [slowest + 0.5 * (rest)]; with a
   finite budget the makespan replaces [slowest]. *)

type session = {
  label : string;
  start_elapsed : float;
  mutable costs : float list;
}

type ctx = {
  clock : Clock.t;
  budget : unit -> int;
  tracer : unit -> Trace.t option;
  mutable active : session option;
}

let create_ctx ~clock ~budget ~tracer () =
  { clock; budget; tracer; active = None }

let measure ctx f =
  match ctx.active with
  | None -> f ()
  | Some s ->
    let before = Clock.lane_time ctx.clock in
    Fun.protect
      ~finally:(fun () ->
        s.costs <- (Clock.lane_time ctx.clock -. before) :: s.costs)
      f

(* Pack costs onto [lanes] lanes, longest first (LPT): each cost lands on
   the least-loaded lane.  lanes <= 1 or a single cost degenerate to the
   serial sum. *)
let makespan ~lanes costs =
  let lanes = max 1 lanes in
  let total = List.fold_left ( +. ) 0.0 costs in
  if lanes = 1 then total
  else
    match costs with
    | [] | [ _ ] -> total
    | costs ->
      let loads = Array.make lanes 0.0 in
      List.iter
        (fun c ->
          let least = ref 0 in
          for i = 1 to lanes - 1 do
            if loads.(i) < loads.(!least) then least := i
          done;
          loads.(!least) <- loads.(!least) +. c)
        (List.sort (fun a b -> Float.compare b a) costs);
      Array.fold_left Float.max 0.0 loads

let now ctx = Clock.elapsed_ns (Clock.snapshot ctx.clock)

let finish ctx s =
  let n = List.length s.costs in
  if n > 1 then begin
    let total = List.fold_left ( +. ) 0.0 s.costs in
    let overlapped = makespan ~lanes:(ctx.budget ()) s.costs in
    (* snapshot the end time before refunding: the refund rewinds the
       clock, so measuring afterwards under-reports (or negative-reports)
       the session's duration *)
    let end_elapsed = now ctx in
    if total > overlapped then
      (* pay the makespan plus a queueing share of the overlap *)
      Clock.refund ctx.clock (0.5 *. (total -. overlapped));
    match ctx.tracer () with
    | Some tr when total > 0.0 ->
      Trace.span tr ~name:("probe:" ^ s.label) ~cat:"probe"
        ~lane:"foreground" ~start_ns:s.start_elapsed
        ~dur_ns:(end_elapsed -. s.start_elapsed)
        ~args:
          [
            ("tables", string_of_int n);
            ("serial_ns", Printf.sprintf "%.0f" total);
            ("overlapped_ns", Printf.sprintf "%.0f" overlapped);
            ("budget", string_of_int (ctx.budget ()));
          ]
        ()
    | Some _ | None -> ()
  end

let with_session ctx ~label f =
  match ctx.active with
  | Some _ -> f () (* nested: fold into the outer session *)
  | None ->
    let s = { label; start_elapsed = now ctx; costs = [] } in
    ctx.active <- Some s;
    Fun.protect
      ~finally:(fun () ->
        ctx.active <- None;
        finish ctx s)
      f
