(* Tests for the write-ahead log and MANIFEST. *)

module Wal = Pdb_wal.Wal
module Manifest = Pdb_manifest.Manifest
module Env = Pdb_simio.Env

let check = Alcotest.check

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let test_wal_roundtrip () =
  let env = Env.create () in
  let w = Wal.Writer.create env "log" in
  let records = [ "first"; "second record"; ""; "third" ] in
  List.iter (Wal.Writer.add_record w) records;
  Wal.Writer.close w;
  check Alcotest.(list string) "records" records (Wal.Reader.read_all env "log")

let test_wal_large_record_fragments () =
  let env = Env.create () in
  let w = Wal.Writer.create env "log" in
  (* larger than two blocks: forces FIRST/MIDDLE/LAST *)
  let big = String.init 80_000 (fun i -> Char.chr (i mod 256)) in
  Wal.Writer.add_record w "before";
  Wal.Writer.add_record w big;
  Wal.Writer.add_record w "after";
  Wal.Writer.close w;
  check Alcotest.(list string) "fragmented roundtrip" [ "before"; big; "after" ]
    (Wal.Reader.read_all env "log")

let test_wal_block_boundary () =
  (* records sized to land a header exactly at the block boundary *)
  let env = Env.create () in
  let w = Wal.Writer.create env "log" in
  let records =
    List.init 40 (fun i -> String.make (1000 + i) (Char.chr (65 + (i mod 26))))
  in
  List.iter (Wal.Writer.add_record w) records;
  Wal.Writer.close w;
  check Alcotest.(list string) "boundary roundtrip" records
    (Wal.Reader.read_all env "log")

let test_wal_truncated_tail_dropped () =
  let env = Env.create () in
  let w = Wal.Writer.create env "log" in
  Wal.Writer.add_record w "durable-1";
  Wal.Writer.add_record w "durable-2";
  Wal.Writer.sync w;
  Wal.Writer.add_record w "volatile";
  Env.crash env;
  check Alcotest.(list string) "synced records survive"
    [ "durable-1"; "durable-2" ]
    (Wal.Reader.read_all env "log")

let test_wal_corrupt_crc_stops () =
  let env = Env.create () in
  let w = Wal.Writer.create env "log" in
  Wal.Writer.add_record w "good";
  Wal.Writer.add_record w "evil";
  Wal.Writer.close w;
  (* flip a byte inside the second record's payload *)
  let data = Env.read_all env "log" ~hint:Pdb_simio.Device.Sequential_read in
  let bytes = Bytes.of_string data in
  let target = String.length data - 1 in
  Bytes.set bytes target
    (Char.chr (Char.code (Bytes.get bytes target) lxor 0xff));
  let w2 = Env.create_file env "log" in
  Env.append w2 (Bytes.to_string bytes);
  check Alcotest.(list string) "reader stops at corruption" [ "good" ]
    (Wal.Reader.read_all env "log")

let prop_wal_roundtrip =
  qtest "wal roundtrip (random records)"
    QCheck.(list (string_of_size QCheck.Gen.(0 -- 500)))
    (fun records ->
      let env = Env.create () in
      let w = Wal.Writer.create env "log" in
      List.iter (Wal.Writer.add_record w) records;
      Wal.Writer.close w;
      Wal.Reader.read_all env "log" = records)

(* ---------- Manifest ---------- *)

let meta number : Pdb_sstable.Table.meta =
  {
    Pdb_sstable.Table.number;
    file_size = 1000 + number;
    entries = 10 * number;
    smallest = Printf.sprintf "small%d" number;
    largest = Printf.sprintf "large%d" number;
  }

let test_edit_roundtrip () =
  let e = Manifest.empty_edit () in
  e.Manifest.log_number <- Some 7;
  e.Manifest.next_file_number <- Some 42;
  e.Manifest.last_sequence <- Some 99999;
  e.Manifest.added_files <- [ (0, meta 1); (2, meta 5) ];
  e.Manifest.deleted_files <- [ (1, 3) ];
  e.Manifest.added_guards <- [ (1, "guard-a"); (3, "guard-b") ];
  e.Manifest.deleted_guards <- [ (2, "guard-c") ];
  let e' = Manifest.decode_edit (Manifest.encode_edit e) in
  Alcotest.(check (option int)) "log" (Some 7) e'.Manifest.log_number;
  Alcotest.(check (option int)) "next file" (Some 42)
    e'.Manifest.next_file_number;
  Alcotest.(check (option int)) "last seq" (Some 99999)
    e'.Manifest.last_sequence;
  Alcotest.(check int) "added files" 2 (List.length e'.Manifest.added_files);
  (let lvl, m = List.nth e'.Manifest.added_files 1 in
   Alcotest.(check int) "level" 2 lvl;
   Alcotest.(check int) "number" 5 m.Pdb_sstable.Table.number;
   Alcotest.(check string) "smallest" "small5" m.Pdb_sstable.Table.smallest);
  Alcotest.(check (list (pair int int))) "deleted" [ (1, 3) ]
    e'.Manifest.deleted_files;
  Alcotest.(check (list (pair int string))) "guards"
    [ (1, "guard-a"); (3, "guard-b") ]
    e'.Manifest.added_guards;
  Alcotest.(check (list (pair int string))) "deleted guards"
    [ (2, "guard-c") ]
    e'.Manifest.deleted_guards

let test_manifest_create_recover () =
  let env = Env.create () in
  let e1 = Manifest.empty_edit () in
  e1.Manifest.next_file_number <- Some 2;
  let m = Manifest.create env ~dir:"db" ~number:1 ~edits:[ e1 ] in
  let e2 = Manifest.empty_edit () in
  e2.Manifest.added_files <- [ (0, meta 9) ];
  Manifest.append m e2;
  match Manifest.recover env ~dir:"db" with
  | None -> Alcotest.fail "expected manifest"
  | Some (name, edits) ->
    Alcotest.(check bool) "name points at manifest" true
      (String.length name > 0);
    Alcotest.(check int) "two edits" 2 (List.length edits);
    let last = List.nth edits 1 in
    Alcotest.(check int) "recovered file add" 9
      (snd (List.hd last.Manifest.added_files)).Pdb_sstable.Table.number

let test_manifest_survives_crash () =
  let env = Env.create () in
  let m = Manifest.create env ~dir:"db" ~number:1 ~edits:[] in
  let e = Manifest.empty_edit () in
  e.Manifest.last_sequence <- Some 5;
  Manifest.append m e;
  (* appended edits are synced; crash must preserve them *)
  Env.crash env;
  match Manifest.recover env ~dir:"db" with
  | None -> Alcotest.fail "manifest lost"
  | Some (_, edits) ->
    Alcotest.(check int) "edit survives crash" 1 (List.length edits)

let test_manifest_missing () =
  let env = Env.create () in
  Alcotest.(check bool) "no CURRENT -> None" true
    (Manifest.recover env ~dir:"db" = None)

let () =
  Alcotest.run "wal-manifest"
    [
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "large record" `Quick
            test_wal_large_record_fragments;
          Alcotest.test_case "block boundary" `Quick test_wal_block_boundary;
          Alcotest.test_case "truncated tail" `Quick
            test_wal_truncated_tail_dropped;
          Alcotest.test_case "corrupt crc" `Quick test_wal_corrupt_crc_stops;
          prop_wal_roundtrip;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "edit roundtrip" `Quick test_edit_roundtrip;
          Alcotest.test_case "create/recover" `Quick
            test_manifest_create_recover;
          Alcotest.test_case "crash durability" `Quick
            test_manifest_survives_crash;
          Alcotest.test_case "missing" `Quick test_manifest_missing;
        ] );
    ]
