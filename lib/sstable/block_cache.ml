(** Shared block cache: decoded blocks keyed by (file, offset), weighted by
    block size.  A cache hit costs no device time — only the modeled CPU the
    engine charges — which is how "the lower levels are usually cached in
    memory" (§2.2) and the low-memory experiment (Figure 5.2b) are
    expressed. *)

type key = { file : string; offset : int }

type t = (string, Block.t) Pdb_util.Lru.t

let create ~capacity : t = Pdb_util.Lru.create ~capacity

let key_string (k : key) = Printf.sprintf "%s:%d" k.file k.offset

(** [find_or_load t env ~file ~offset ~size ~hint] returns the decoded
    block, reading it from the environment (and charging device time) only
    on a miss. *)
let find_or_load (t : t) env ~file ~offset ~size ~hint =
  let k = key_string { file; offset } in
  match Pdb_util.Lru.find t k with
  | Some block -> (block, `Hit)
  | None ->
    let raw = Pdb_simio.Env.read env file ~pos:offset ~len:size ~hint in
    let block = Block.decode raw in
    Pdb_util.Lru.insert t k block ~weight:size;
    (block, `Miss)

(** [evict_file t ~file] drops every cached block of [file].  Called when
    an sstable is garbage-collected: its decoded blocks must not keep
    occupying LRU capacity (they can never hit again) or skew hit rates,
    mirroring [Table_cache.evict]. *)
let evict_file (t : t) ~file =
  let prefix = file ^ ":" in
  let plen = String.length prefix in
  let doomed =
    Pdb_util.Lru.fold t
      (fun acc k _ ->
        if String.length k >= plen && String.sub k 0 plen = prefix then
          k :: acc
        else acc)
      []
  in
  List.iter (Pdb_util.Lru.remove t) doomed

let used = Pdb_util.Lru.used
let hits = Pdb_util.Lru.hits
let misses = Pdb_util.Lru.misses
