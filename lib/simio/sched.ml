(** Discrete-event placement of background work on N worker timelines.

    The paper observes (§4.3) that FLSM compaction is trivially
    parallelisable: disjoint guards can be compacted concurrently by
    multiple threads.  This module models that: each completed unit of
    background work (a compaction job, a memtable flush) is {e placed} on
    one of [workers] timelines.  A job starts no earlier than

    - its worker lane is free, and
    - every previously placed job whose {!footprint} conflicts with it has
      finished (jobs over disjoint guards / key ranges overlap freely;
      jobs touching the same levels and overlapping key ranges
      serialise).

    The max over lanes of the last finish time is the background
    completion horizon, pushed into {!Clock.note_bg_horizon} so that
    {!Clock.elapsed_ns} reflects it.  Placement is deterministic (greedy
    earliest-start, ties to the lowest lane index), so modeled time — and
    everything else — is a pure function of the workload regardless of
    worker count. *)

type footprint = {
  level_lo : int;
  level_hi : int;  (** inclusive level span the job reads or writes *)
  key_lo : string;
  key_hi : string option;
      (** exclusive user-key upper bound; [None] is +infinity *)
}

let full_range ~level_lo ~level_hi =
  { level_lo; level_hi; key_lo = ""; key_hi = None }

(** [conflicts a b] — same-level contact and overlapping key ranges. *)
let conflicts a b =
  a.level_lo <= b.level_hi && b.level_lo <= a.level_hi
  && (match a.key_hi with
     | None -> true
     | Some hi -> String.compare b.key_lo hi < 0)
  && (match b.key_hi with
     | None -> true
     | Some hi -> String.compare a.key_lo hi < 0)

type t = {
  clock : Clock.t;
  n_workers : int; (* general lanes: indices [0, n_workers) *)
  free_at : float array; (* per-lane timeline frontier, flush lanes last *)
  busy_ns : float array; (* per-lane cumulative busy time *)
  mutable placed : (footprint * float) list; (* recent jobs: finish times *)
  mutable jobs_placed : int;
  mutable serialized_jobs : int;
      (* jobs whose start was delayed by a conflicting predecessor *)
}

let create ?(flush_lanes = 0) ~clock ~workers () =
  let n = max 1 workers in
  let total = n + max 0 flush_lanes in
  {
    clock;
    n_workers = n;
    (* a fresh scheduler (e.g. a reopened store) starts at the clock's
       current horizon: it cannot pack work into a closed store's past *)
    free_at = Array.make total clock.Clock.bg_horizon_ns;
    busy_ns = Array.make total 0.0;
    placed = [];
    jobs_placed = 0;
    serialized_jobs = 0;
  }

let workers t = t.n_workers
let flush_lanes t = Array.length t.free_at - t.n_workers
let busy_ns t = Array.copy t.busy_ns

let flush_busy_ns t =
  let acc = ref 0.0 in
  for i = t.n_workers to Array.length t.busy_ns - 1 do
    acc := !acc +. t.busy_ns.(i)
  done;
  !acc

let jobs_placed t = t.jobs_placed
let serialized_jobs t = t.serialized_jobs

let horizon_ns t = Array.fold_left Float.max 0.0 t.free_at

type placement = { lane : int; start_ns : float; finish_ns : float }

(** Which lanes a job may occupy: [`Worker] work (compactions) uses the
    general lanes; [`Flush] work uses the reserved flush lanes when the
    scheduler has any, falling back to the general lanes otherwise.  The
    reservation is one-way — compactions can never occupy a flush lane —
    which is the fairness invariant: however deep the compaction queue
    packs the worker lanes, a flush starts no later than its footprint
    conflicts allow. *)
let lane_range t = function
  | `Worker -> (0, t.n_workers)
  | `Flush ->
    let total = Array.length t.free_at in
    if total > t.n_workers then (t.n_workers, total) else (0, t.n_workers)

(** [place_span t fp ~duration_ns] puts a completed unit of work on the
    lane (within its class) that lets it finish earliest, honouring
    footprint conflicts; returns the full placement (lane, modeled start
    and finish) — the tracer uses it to draw per-worker timelines. *)
let place_span ?(cls = `Worker) t fp ~duration_ns =
  let blocked_until =
    List.fold_left
      (fun acc (g, fin) -> if conflicts fp g then Float.max acc fin else acc)
      0.0 t.placed
  in
  let lo, hi = lane_range t cls in
  let lane = ref lo and start = ref infinity in
  for i = lo to hi - 1 do
    let s = Float.max t.free_at.(i) blocked_until in
    if s < !start then begin
      lane := i;
      start := s
    end
  done;
  (* serialized = the conflict pushed the start past the earliest free
     eligible lane, i.e. an idle worker could not be used *)
  let earliest_free = ref infinity in
  for i = lo to hi - 1 do
    earliest_free := Float.min !earliest_free t.free_at.(i)
  done;
  if blocked_until > !earliest_free then
    t.serialized_jobs <- t.serialized_jobs + 1;
  let finish = !start +. duration_ns in
  t.free_at.(!lane) <- finish;
  t.busy_ns.(!lane) <- t.busy_ns.(!lane) +. duration_ns;
  t.jobs_placed <- t.jobs_placed + 1;
  (* a past job finishing at or before every lane frontier can no longer
     delay anything: each new job starts at or after its lane's frontier *)
  let floor = Array.fold_left Float.min infinity t.free_at in
  t.placed <- (fp, finish) :: List.filter (fun (_, f) -> f > floor) t.placed;
  Clock.note_bg_horizon t.clock finish;
  { lane = !lane; start_ns = !start; finish_ns = finish }

(** [place t fp ~duration_ns] is {!place_span} returning only the modeled
    finish time. *)
let place t fp ~duration_ns = (place_span t fp ~duration_ns).finish_ns
