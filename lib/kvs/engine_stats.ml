(** Per-engine operation counters, shared by LSM and FLSM stores.

    These are measurement hooks for the evaluation: compaction volume
    (write amplification breakdown), bloom effectiveness, sstable reads per
    query (the FLSM read-overhead analysis in §4.1/§4.2), and stall
    accounting. *)

type t = {
  mutable user_bytes_written : int;  (** key+value payload accepted *)
  mutable flushes : int;
  mutable compactions : int;
  mutable compaction_bytes_read : int;
  mutable compaction_bytes_written : int;
  mutable sstables_built : int;
  mutable gets : int;
  mutable puts : int;
  mutable deletes : int;
  mutable seeks : int;
  mutable nexts : int;
  mutable sstables_examined : int;  (** tables consulted across all queries *)
  mutable bloom_checks : int;
  mutable bloom_negative : int;  (** tables skipped thanks to a filter *)
  mutable write_stalls : int;
  mutable guards_committed : int;  (** FLSM only *)
  mutable guards_empty : int;  (** FLSM only; refreshed on demand *)
  mutable seek_compactions : int;  (** FLSM only *)
  mutable write_breakdown : (string * int) list;
      (** bytes written per compaction category (diagnostics) *)
  (* background-scheduler counters, mirrored from the compaction
     scheduler when an engine reports stats *)
  mutable compaction_jobs : int;  (** jobs drained by the scheduler *)
  mutable compaction_queue_peak : int;  (** max pending jobs observed *)
  mutable compaction_backlog_peak_bytes : int;
  mutable compaction_serialized_jobs : int;
      (** jobs delayed by a conflicting footprint *)
  mutable compaction_pending : int;
      (** jobs queued but not yet run at the time of the stats call *)
  mutable compaction_backlog_bytes : int;
      (** estimated bytes across currently pending jobs *)
  mutable stall_slowdown_ns : float;
  mutable stall_stop_ns : float;
  mutable worker_busy_ns : float array;  (** per-lane busy time *)
  (* WAL-recovery accounting, set once at open from the log reader's
     recovery report *)
  mutable wal_records_recovered : int;
      (** complete WAL records replayed at the last open *)
  mutable wal_bytes_dropped : int;
      (** WAL bytes lost to a torn/corrupt tail or orphaned fragments *)
  mutable wal_batches_rejected : int;
      (** well-framed WAL records whose batch payload failed to decode at
          the last open — counted, never silently skipped *)
  (* group-commit accounting (LevelDB-style writers queue) *)
  mutable write_groups : int;  (** commit groups formed, singletons included *)
  mutable write_group_batches : int;
      (** batches committed through groups; [/ write_groups] is the
          average group size *)
  mutable group_syncs_saved : int;
      (** WAL syncs amortised away by grouping under [wal_sync_writes]:
          per group, one less than the batches covered by the end-of-group
          sync — batches retired by a mid-group flush/checkpoint (their
          log was rotated away) don't count *)
  mutable client_wait_ns : float array;
      (** per-client foreground blocked time (device contention + waiting
          on a group leader), set by the multi-client driver *)
}

let bump_breakdown t category bytes =
  let current =
    match List.assoc_opt category t.write_breakdown with
    | Some v -> v
    | None -> 0
  in
  t.write_breakdown <-
    (category, current + bytes)
    :: List.remove_assoc category t.write_breakdown

let create () =
  {
    user_bytes_written = 0;
    flushes = 0;
    compactions = 0;
    compaction_bytes_read = 0;
    compaction_bytes_written = 0;
    sstables_built = 0;
    gets = 0;
    puts = 0;
    deletes = 0;
    seeks = 0;
    nexts = 0;
    sstables_examined = 0;
    bloom_checks = 0;
    bloom_negative = 0;
    write_stalls = 0;
    guards_committed = 0;
    guards_empty = 0;
    seek_compactions = 0;
    write_breakdown = [];
    compaction_jobs = 0;
    compaction_queue_peak = 0;
    compaction_backlog_peak_bytes = 0;
    compaction_serialized_jobs = 0;
    compaction_pending = 0;
    compaction_backlog_bytes = 0;
    stall_slowdown_ns = 0.0;
    stall_stop_ns = 0.0;
    worker_busy_ns = [||];
    wal_records_recovered = 0;
    wal_bytes_dropped = 0;
    wal_batches_rejected = 0;
    write_groups = 0;
    write_group_batches = 0;
    group_syncs_saved = 0;
    client_wait_ns = [||];
  }

let pp ppf t =
  Fmt.pf ppf
    "user=%dB flushes=%d compactions=%d cread=%dB cwritten=%dB tables=%d \
     stalls=%d"
    t.user_bytes_written t.flushes t.compactions t.compaction_bytes_read
    t.compaction_bytes_written t.sstables_built t.write_stalls
