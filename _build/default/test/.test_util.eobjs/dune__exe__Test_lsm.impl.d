test/test_lsm.ml: Alcotest Array Fun Hashtbl List Pdb_kvs Pdb_lsm Pdb_simio Pdb_sstable Pdb_util Printf QCheck QCheck_alcotest String
