(** Guards: the organising structure of the Fragmented LSM (§3.1).

    A guard [G_i] with key [K_i] owns every sstable whose keys fall in
    [K_i, K_{i+1}).  Guards within a level never overlap, but the sstables
    *inside* a guard may — that is the relaxation of the classical LSM
    invariant that lets FLSM append compaction output instead of rewriting
    it.  Each level's guard array starts with the sentinel guard (key "")
    that owns keys smaller than the first real guard.

    Structural invariants maintained here and checked by
    {!Pebbles_store.check_invariants}:
    - [guards.(0)] is the sentinel; keys strictly ascend across the array;
    - every table attached to a guard lies entirely inside the guard's
      range (no straddlers — enforced at compaction/commit time);
    - tables are listed newest-first, so a get() can stop at the first
      bloom-confirmed hit. *)

module Ik = Pdb_kvs.Internal_key
module Table = Pdb_sstable.Table

type guard = {
  gkey : string; (* user key; "" for the sentinel *)
  mutable tables : Table.meta list; (* newest first *)
}

type level = { mutable guards : guard array }

let sentinel () = { gkey = ""; tables = [] }

let create_level () = { guards = [| sentinel () |] }

(** [guard_index level key] is the index of the guard owning user [key]:
    the last guard whose key is <= [key] (always >= 0 thanks to the
    sentinel). *)
let guard_index level key =
  let g = level.guards in
  let lo = ref 0 and hi = ref (Array.length g - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if String.compare g.(mid).gkey key <= 0 then lo := mid else hi := mid - 1
  done;
  !lo

(** [guard_range level i] is the key range [lo, hi) of guard [i]; [hi] is
    [None] for the last guard. *)
let guard_range level i =
  let g = level.guards in
  let hi = if i + 1 < Array.length g then Some g.(i + 1).gkey else None in
  (g.(i).gkey, hi)

(** [table_fits level i (m : Table.meta)] tests whether [m]'s user-key range
    lies entirely inside guard [i]. *)
let table_fits level i (m : Table.meta) =
  let lo, hi = guard_range level i in
  let s = Ik.user_key m.Table.smallest and l = Ik.user_key m.Table.largest in
  String.compare lo s <= 0
  && (match hi with None -> true | Some h -> String.compare l h < 0)

(** [straddles level key (m : Table.meta)] is true when [m]'s range contains
    keys both < [key] and >= [key] — such a table must be compacted away
    before [key] can become a guard of this level. *)
let straddles key (m : Table.meta) =
  String.compare (Ik.user_key m.Table.smallest) key < 0
  && String.compare (Ik.user_key m.Table.largest) key >= 0

(** [attach level m] prepends table [m] to its guard (newest first).
    Asserts the no-straddler invariant. *)
let attach level (m : Table.meta) =
  let i = guard_index level (Ik.user_key m.Table.smallest) in
  assert (table_fits level i m);
  level.guards.(i).tables <- m :: level.guards.(i).tables

(** [detach level numbers] removes the tables whose file numbers are in
    [numbers] from every guard. *)
let detach level numbers =
  Array.iter
    (fun g ->
      g.tables <-
        List.filter
          (fun (m : Table.meta) -> not (List.mem m.Table.number numbers))
          g.tables)
    level.guards

(** [commit_guards level keys] splices new guard [keys] into the level,
    redistributing each affected guard's tables (which, after straddler
    removal, each fit wholly on one side of every new key). *)
let commit_guards level keys =
  let keys =
    List.sort_uniq String.compare
      (List.filter
         (fun k ->
           k <> ""
           && not
                (Array.exists (fun g -> String.equal g.gkey k) level.guards))
         keys)
  in
  if keys <> [] then begin
    let all_tables =
      Array.to_list level.guards |> List.concat_map (fun g -> g.tables)
    in
    let merged_keys =
      List.sort_uniq String.compare
        (keys
         @ (Array.to_list level.guards
            |> List.filter_map (fun g ->
                   if g.gkey = "" then None else Some g.gkey)))
    in
    let guards =
      Array.of_list
        (sentinel () :: List.map (fun k -> { gkey = k; tables = [] }) merged_keys)
    in
    level.guards <- guards;
    (* reattach preserving newest-first order *)
    List.iter
      (fun m ->
        let i = guard_index level (Ik.user_key m.Table.smallest) in
        if not (table_fits level i m) then
          failwith "Guard.commit_guards: straddling table";
        guards.(i).tables <- m :: guards.(i).tables)
      (List.rev all_tables)
  end

(** [delete_guard level key] removes guard [key], folding its tables into
    the preceding guard (asynchronous guard deletion, §3.3). *)
let delete_guard level key =
  match
    Array.to_list level.guards
    |> List.partition (fun g -> String.equal g.gkey key)
  with
  | [], _ -> ()
  | doomed, kept ->
    let kept = Array.of_list kept in
    let orphans = List.concat_map (fun g -> g.tables) doomed in
    level.guards <- kept;
    (* predecessor guard absorbs the orphans (ranges stay sorted since the
       predecessor's range now extends to the next remaining guard) *)
    List.iter
      (fun m ->
        let i = guard_index level (Ik.user_key m.Table.smallest) in
        kept.(i).tables <- m :: kept.(i).tables)
      (List.rev orphans)

let all_tables level =
  Array.to_list level.guards |> List.concat_map (fun g -> g.tables)

let table_count level =
  Array.fold_left (fun acc g -> acc + List.length g.tables) 0 level.guards

let bytes level =
  Array.fold_left
    (fun acc g ->
      acc
      + List.fold_left
          (fun a (m : Table.meta) -> a + m.Table.file_size)
          0 g.tables)
    0 level.guards

let guard_count level = Array.length level.guards - 1 (* excluding sentinel *)

let empty_guard_count level =
  Array.fold_left
    (fun acc g -> if g.gkey <> "" && g.tables = [] then acc + 1 else acc)
    0 level.guards

(** Modeled in-memory footprint of the guard metadata (Table 5.4). *)
let metadata_bytes level =
  Array.fold_left
    (fun acc g ->
      acc + String.length g.gkey + 48 + (16 * List.length g.tables))
    0 level.guards
