test/test_btree.ml: Alcotest Array Filename Fun Hashtbl List Pdb_btree Pdb_kvs Pdb_lsm Pdb_simio Pdb_util Printf QCheck QCheck_alcotest
