lib/sstable/table.mli: Block_cache Pdb_kvs Pdb_simio
