(* Tests for the compaction-job framework: scheduler semantics,
   worker-count invariance of store state, invariant preservation after
   every drained job, and the guard-parallelism throughput claim (§4.3). *)

module P = Pebblesdb.Pebbles_store
module L = Pdb_lsm.Lsm_store
module O = Pdb_kvs.Options
module Env = Pdb_simio.Env
module Clock = Pdb_simio.Clock
module Device = Pdb_simio.Device
module Sched = Pdb_simio.Sched
module Job = Pdb_compaction.Job
module Scheduler = Pdb_compaction.Scheduler

let check = Alcotest.check
let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "value-%06d-%s" i (String.make 20 'x')

let tiny ?(threads = 1) base =
  {
    base with
    O.memtable_bytes = 2 * 1024;
    level_bytes_base = 8 * 1024;
    sstable_target_bytes = 4 * 1024;
    block_bytes = 512;
    compaction_threads = threads;
  }

(* ---------- scheduler unit tests ---------- *)

let manual_job ?(key = "x") run =
  {
    Job.key;
    trigger = Job.Manual;
    estimated_bytes = 10;
    footprint = Sched.full_range ~level_lo:0 ~level_hi:0;
    run;
  }

let test_submit_dedup_and_fifo () =
  let clock = Clock.create () in
  let s = Scheduler.create ~clock ~workers:2 () in
  let order = ref [] in
  Alcotest.(check bool) "first accepted" true
    (Scheduler.submit s (manual_job ~key:"a" (fun () -> order := "a" :: !order)));
  Alcotest.(check bool) "second accepted" true
    (Scheduler.submit s (manual_job ~key:"b" (fun () -> order := "b" :: !order)));
  Alcotest.(check bool) "duplicate key rejected" false
    (Scheduler.submit s (manual_job ~key:"a" (fun () -> order := "dup" :: !order)));
  check Alcotest.int "two pending" 2 (Scheduler.pending s);
  Scheduler.drain s;
  check Alcotest.(list string) "FIFO order" [ "a"; "b" ] (List.rev !order);
  check Alcotest.int "queue empty" 0 (Scheduler.pending s);
  Alcotest.(check bool) "key reusable after drain" true
    (Scheduler.submit s (manual_job ~key:"a" (fun () -> ())));
  Scheduler.drain s

let test_drain_runs_on_background_lane () =
  let clock = Clock.create () in
  let s = Scheduler.create ~clock ~workers:1 () in
  ignore
    (Scheduler.submit s (manual_job (fun () -> Clock.advance clock 500.0)));
  Scheduler.drain s;
  let snap = Clock.snapshot clock in
  check (Alcotest.float 0.001) "charged to background" 500.0
    snap.Clock.background_ns;
  check (Alcotest.float 0.001) "placed on a worker lane" 500.0
    snap.Clock.bg_horizon_ns;
  check Alcotest.int "job counted" 1 (Scheduler.stats s).Scheduler.jobs_run

(* ---------- worker-count invariance ---------- *)

(* Final on-storage state must be a pure function of the workload: the
   worker count shapes modeled time only.  Compare the full file set,
   byte for byte. *)
let env_fingerprint env =
  Env.list env |> List.sort compare
  |> List.map (fun f ->
         f ^ "="
         ^ Digest.to_hex
             (Digest.string (Env.read_all env f ~hint:Device.Sequential_read)))
  |> String.concat "\n"

let pebbles_workload ~threads ~n =
  let env = Env.create () in
  let db = P.open_store (tiny ~threads (O.pebblesdb ())) ~env ~dir:"db" in
  for i = 0 to n - 1 do
    P.put db (key (i * 7919 mod n)) (value i);
    if i mod 13 = 0 then P.delete db (key (i * 31 mod n))
  done;
  P.flush db;
  P.check_invariants db;
  P.compact_all db;
  P.check_invariants db;
  P.close db;
  env

let lsm_workload ~threads ~n =
  let env = Env.create () in
  let db = L.open_store (tiny ~threads (O.hyperleveldb ())) ~env ~dir:"db" in
  for i = 0 to n - 1 do
    L.put db (key (i * 7919 mod n)) (value i);
    if i mod 13 = 0 then L.delete db (key (i * 31 mod n))
  done;
  L.flush db;
  L.check_invariants db;
  L.compact_all db;
  L.check_invariants db;
  L.close db;
  env

let test_pebbles_worker_count_invariance () =
  let a = env_fingerprint (pebbles_workload ~threads:1 ~n:1500) in
  let b = env_fingerprint (pebbles_workload ~threads:4 ~n:1500) in
  check Alcotest.string "1 vs 4 workers: byte-identical files" a b

let test_lsm_worker_count_invariance () =
  let a = env_fingerprint (lsm_workload ~threads:1 ~n:1500) in
  let b = env_fingerprint (lsm_workload ~threads:4 ~n:1500) in
  check Alcotest.string "1 vs 4 workers: byte-identical files" a b

(* ---------- invariants after every drained job ---------- *)

let test_pebbles_invariants_after_every_job () =
  let env = Env.create () in
  let db = P.open_store (tiny ~threads:2 (O.pebblesdb ())) ~env ~dir:"db" in
  let observed = ref 0 in
  Scheduler.set_observer (P.compaction_scheduler db) (fun _job ->
      incr observed;
      P.check_invariants db);
  for i = 0 to 1499 do
    P.put db (key (i * 7919 mod 1500)) (value i)
  done;
  P.flush db;
  P.compact_all db;
  Alcotest.(check bool) "observer saw jobs" true (!observed > 50)

let test_lsm_invariants_after_every_job () =
  let env = Env.create () in
  let db = L.open_store (tiny ~threads:2 (O.hyperleveldb ())) ~env ~dir:"db" in
  let observed = ref 0 in
  Scheduler.set_observer (L.compaction_scheduler db) (fun _job ->
      incr observed;
      L.check_invariants db);
  for i = 0 to 1499 do
    L.put db (key (i * 7919 mod 1500)) (value i)
  done;
  L.flush db;
  Alcotest.(check bool) "observer saw jobs" true (!observed > 20)

(* ---------- guard-parallelism shows up in modeled time (§4.3) ---------- *)

(* Random fill, modeled elapsed.  FLSM's compaction decomposes into many
   jobs over disjoint guards, so extra worker lanes shorten its background
   completion horizon more than they shorten the leveled LSM's few wide
   serialized jobs.  The reserved flush lane is disabled so flushes
   contend with compactions on the worker lanes as in the classical
   engines — this test isolates how *compaction* packs the lanes as the
   worker count grows, and the flush lane would hand both engines part of
   that benefit already at one worker. *)
let modeled_fill_ns ~pebbles ~threads ~n =
  let env = Env.create () in
  let clock = Env.clock env in
  let fill put flush =
    let c0 = Clock.snapshot clock in
    for i = 0 to n - 1 do
      put (key (i * 7919 mod n)) (value i)
    done;
    flush ();
    Clock.elapsed_ns (Clock.diff (Clock.snapshot clock) c0)
  in
  let shared_lanes o = { o with O.flush_reserved_lane = false } in
  if pebbles then begin
    let db =
      P.open_store (shared_lanes (tiny ~threads (O.pebblesdb ()))) ~env
        ~dir:"db"
    in
    let e = fill (P.put db) (fun () -> P.flush db) in
    P.close db;
    e
  end
  else begin
    let db =
      L.open_store (shared_lanes (tiny ~threads (O.hyperleveldb ()))) ~env
        ~dir:"db"
    in
    let e = fill (L.put db) (fun () -> L.flush db) in
    L.close db;
    e
  end

let test_guard_parallelism_beats_leveled_scaling () =
  let n = 3000 in
  let p1 = modeled_fill_ns ~pebbles:true ~threads:1 ~n in
  let p4 = modeled_fill_ns ~pebbles:true ~threads:4 ~n in
  let l1 = modeled_fill_ns ~pebbles:false ~threads:1 ~n in
  let l4 = modeled_fill_ns ~pebbles:false ~threads:4 ~n in
  let p_speedup = p1 /. p4 and l_speedup = l1 /. l4 in
  Alcotest.(check bool)
    (Printf.sprintf "flsm speedup %.3fx > lsm speedup %.3fx" p_speedup
       l_speedup)
    true
    (p_speedup > l_speedup)

let () =
  Alcotest.run "compaction"
    [
      ( "scheduler",
        [
          Alcotest.test_case "dedup and FIFO" `Quick test_submit_dedup_and_fifo;
          Alcotest.test_case "background lane + placement" `Quick
            test_drain_runs_on_background_lane;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pebbles worker-count invariance" `Quick
            test_pebbles_worker_count_invariance;
          Alcotest.test_case "lsm worker-count invariance" `Quick
            test_lsm_worker_count_invariance;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "pebbles invariants after every job" `Quick
            test_pebbles_invariants_after_every_job;
          Alcotest.test_case "lsm invariants after every job" `Quick
            test_lsm_invariants_after_every_job;
        ] );
      ( "throughput-model",
        [
          Alcotest.test_case "guard parallelism beats leveled scaling" `Quick
            test_guard_parallelism_beats_leveled_scaling;
        ] );
    ]
