(** Probabilistic skip list.

    The memtable substrate (§2.2) and the conceptual ancestor of FLSM
    guards: a key that reaches height [h] appears in every list up to [h],
    just as a key chosen as a guard at level [i] is a guard for every
    deeper level.

    Entries are append-only: a duplicate insert adds a new node (memtables
    rely on the internal-key comparator making duplicates distinct via
    sequence numbers). *)

type ('k, 'v) t

(** [create ?max_height ?seed ~compare dummy_key dummy_value] builds an
    empty list ordered by [compare].  The dummies populate the sentinel
    node and are never returned. *)
val create :
  ?max_height:int -> ?seed:int -> compare:('k -> 'k -> int) -> 'k -> 'v ->
  ('k, 'v) t

val length : ('k, 'v) t -> int

(** [insert t key value] adds an entry (duplicates kept). *)
val insert : ('k, 'v) t -> 'k -> 'v -> unit

(** [seek t key] is the first entry with key >= [key]. *)
val seek : ('k, 'v) t -> 'k -> ('k * 'v) option

(** [find t key] is the first entry comparing equal to [key]. *)
val find : ('k, 'v) t -> 'k -> 'v option

val mem : ('k, 'v) t -> 'k -> bool
val min_entry : ('k, 'v) t -> ('k * 'v) option
val max_entry : ('k, 'v) t -> ('k * 'v) option

(** [iter t f] applies [f] to every entry in key order. *)
val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit

val fold : ('k, 'v) t -> ('a -> 'k -> 'v -> 'a) -> 'a -> 'a
val to_list : ('k, 'v) t -> ('k * 'v) list

(** Forward-only cursor, used by memtable iterators. *)
module Cursor : sig
  type ('k, 'v) cursor

  val make : ('k, 'v) t -> ('k, 'v) cursor
  val seek_to_first : ('k, 'v) cursor -> unit
  val seek : ('k, 'v) cursor -> 'k -> unit
  val valid : ('k, 'v) cursor -> bool

  (** @raise Invalid_argument when the cursor is not valid. *)
  val entry : ('k, 'v) cursor -> 'k * 'v

  val next : ('k, 'v) cursor -> unit
end
