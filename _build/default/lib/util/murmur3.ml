(** MurmurHash3 (32-bit, x86 variant).

    PebblesDB selects guards by hashing every inserted key with the cheap
    MurmurHash algorithm and inspecting trailing bits of the hash (§4.4 of
    the paper).  This is a faithful MurmurHash3_x86_32 over strings. *)

let rotl32 x r = ((x lsl r) lor (x lsr (32 - r))) land 0xFFFFFFFF

let fmix32 h =
  let h = h lxor (h lsr 16) in
  let h = (h * 0x85ebca6b) land 0xFFFFFFFF in
  let h = h lxor (h lsr 13) in
  let h = (h * 0xc2b2ae35) land 0xFFFFFFFF in
  h lxor (h lsr 16)

let c1 = 0xcc9e2d51
let c2 = 0x1b873593

(** [hash32 ?seed s] is the 32-bit MurmurHash3 of [s]. *)
let hash32 ?(seed = 0) s =
  let len = String.length s in
  let nblocks = len / 4 in
  let h = ref (seed land 0xFFFFFFFF) in
  for i = 0 to nblocks - 1 do
    let p = i * 4 in
    let k =
      Char.code s.[p]
      lor (Char.code s.[p + 1] lsl 8)
      lor (Char.code s.[p + 2] lsl 16)
      lor (Char.code s.[p + 3] lsl 24)
    in
    let k = (k * c1) land 0xFFFFFFFF in
    let k = rotl32 k 15 in
    let k = (k * c2) land 0xFFFFFFFF in
    h := !h lxor k;
    h := rotl32 !h 13;
    h := (!h * 5 + 0xe6546b64) land 0xFFFFFFFF
  done;
  let tail = nblocks * 4 in
  let k = ref 0 in
  let rem = len land 3 in
  if rem >= 3 then k := !k lxor (Char.code s.[tail + 2] lsl 16);
  if rem >= 2 then k := !k lxor (Char.code s.[tail + 1] lsl 8);
  if rem >= 1 then begin
    k := !k lxor Char.code s.[tail];
    k := (!k * c1) land 0xFFFFFFFF;
    k := rotl32 !k 15;
    k := (!k * c2) land 0xFFFFFFFF;
    h := !h lxor !k
  end;
  h := !h lxor len;
  fmix32 !h

(** [trailing_ones n] counts consecutive set least-significant bits — the
    quantity PebblesDB's guard selector inspects. *)
let trailing_ones n =
  let rec go n acc = if n land 1 = 1 then go (n lsr 1) (acc + 1) else acc in
  go n 0
