(* Unit tests for first-class compaction policies (lib/compaction/policy.ml):
   the shared trigger threshold, per-policy scores and layouts, tiered run
   accumulation in the LSM engine, the lazy-leveled last-level invariant,
   and worker-count byte-invariance under every policy. *)

module Policy = Pdb_compaction.Policy
module O = Pdb_kvs.Options
module L = Pdb_lsm.Lsm_store
module Env = Pdb_simio.Env
module Device = Pdb_simio.Device
module Stores = Pdb_harness.Stores
module Dyn = Pdb_kvs.Store_intf
module Ik = Pdb_kvs.Internal_key
module Table = Pdb_sstable.Table

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "value-%06d-%s" i (String.make 20 'x')

let all_policies =
  List.map Policy.of_policy O.all_compaction_policies

(* ---------- trigger threshold (the deduplicated 0.999) ---------- *)

let test_threshold () =
  Alcotest.(check bool) "at the threshold: no trigger" false
    (Policy.should_trigger Policy.score_threshold);
  Alcotest.(check bool) "occupancy 1.0 triggers" true
    (Policy.should_trigger 1.0);
  Alcotest.(check bool) "empty level never triggers" false
    (Policy.should_trigger 0.0)

let state ?(level = 1) ?(last_level = 6) ?(files = 0) ?(bytes = 0)
    ?(max_bytes = 1000) ?(file_trigger = 4) () =
  { Policy.level; last_level; files; bytes; max_bytes; file_trigger }

let test_scores () =
  (* leveled: bytes over budget at levels >= 1 *)
  let p = Policy.leveled in
  Alcotest.(check bool) "leveled under budget" false
    (Policy.should_trigger (p.Policy.score (state ~bytes:999 ())));
  Alcotest.(check bool) "leveled over budget" true
    (Policy.should_trigger (p.Policy.score (state ~bytes:1001 ())));
  (* every policy: L0 triggers on flush count *)
  List.iter
    (fun (p : Policy.t) ->
      Alcotest.(check bool) (p.Policy.name ^ ": l0 below trigger") false
        (Policy.should_trigger (p.Policy.score (state ~level:0 ~files:3 ())));
      Alcotest.(check bool) (p.Policy.name ^ ": l0 at trigger") true
        (Policy.should_trigger (p.Policy.score (state ~level:0 ~files:4 ()))))
    all_policies;
  (* tiered: run count only — a byte-heavy level with few runs is left
     alone (size triggers would cascade small runs and inflate write-amp) *)
  let t = Policy.tiered in
  Alcotest.(check bool) "tiered ignores bytes" false
    (Policy.should_trigger (t.Policy.score (state ~files:2 ~bytes:10_000 ())));
  Alcotest.(check bool) "tiered run count triggers" true
    (Policy.should_trigger (t.Policy.score (state ~files:4 ())));
  Alcotest.(check bool) "tiered last level never triggers" false
    (Policy.should_trigger (t.Policy.score (state ~level:6 ~files:40 ())));
  (* flsm: the guard score is tables over cap *)
  let f = Policy.flsm_guarded in
  Alcotest.(check bool) "guard under cap" false
    (Policy.should_trigger
       (f.Policy.guard_score { Policy.g_tables = 3; g_cap = 4 }));
  Alcotest.(check bool) "guard at cap" true
    (Policy.should_trigger
       (f.Policy.guard_score { Policy.g_tables = 4; g_cap = 4 }))

let test_layouts () =
  let layout (p : Policy.t) level = p.Policy.layout ~level ~last_level:3 in
  Alcotest.(check bool) "leveled: one run per level everywhere" true
    (layout Policy.leveled 1 = Policy.Leveled_run
     && layout Policy.leveled 3 = Policy.Leveled_run);
  Alcotest.(check bool) "tiered: overlapping runs everywhere" true
    (layout Policy.tiered 1 = Policy.Tiered_runs
     && layout Policy.tiered 3 = Policy.Tiered_runs);
  Alcotest.(check bool) "lazy: tiered uppers, leveled last level" true
    (layout Policy.lazy_leveled 2 = Policy.Tiered_runs
     && layout Policy.lazy_leveled 3 = Policy.Leveled_run);
  Alcotest.(check bool) "lazy merges only into the last level" true
    ((not
        (Policy.lazy_leveled.Policy.output_merges_target ~target:2
           ~last_level:3))
     && Policy.lazy_leveled.Policy.output_merges_target ~target:3
          ~last_level:3);
  Alcotest.(check bool) "tiered never merges with the target" false
    (Policy.tiered.Policy.output_merges_target ~target:3 ~last_level:3);
  Alcotest.(check bool) "leveled always merges with the target" true
    (Policy.leveled.Policy.output_merges_target ~target:1 ~last_level:3)

(* ---------- engine-level layout checks ---------- *)

let tiny ?(threads = 1) ?(max_levels = 7) policy =
  {
    (O.hyperleveldb ()) with
    O.memtable_bytes = 2 * 1024;
    level_bytes_base = 8 * 1024;
    sstable_target_bytes = 4 * 1024;
    block_bytes = 512;
    compaction_threads = threads;
    compaction_policy = policy;
    max_levels;
  }

let fill db n =
  for i = 0 to n - 1 do
    L.put db (key (i * 7919 mod n)) (value i)
  done;
  L.flush db

let user_overlap (a : Table.meta) (b : Table.meta) =
  String.compare (Ik.user_key a.Table.smallest)
    (Ik.user_key b.Table.largest)
  <= 0
  && String.compare (Ik.user_key b.Table.smallest)
       (Ik.user_key a.Table.largest)
     <= 0

(* Under the tiered policy, some level >= 1 must accumulate several
   overlapping runs — the layout leveling forbids. *)
let test_tiered_runs_accumulate () =
  let env = Env.create () in
  let db = L.open_store (tiny O.Tiered) ~env ~dir:"db" in
  fill db 1500;
  L.check_invariants db;
  let tiered_levels = ref 0 in
  let overlapping = ref 0 in
  for level = 1 to 6 do
    match L.level_tables db level with
    | (_ :: _ :: _) as files ->
      incr tiered_levels;
      List.iteri
        (fun i a ->
          List.iteri
            (fun j b -> if i < j && user_overlap a b then incr overlapping)
            files)
        files
    | _ -> ()
  done;
  Alcotest.(check bool) "some level >= 1 holds multiple runs" true
    (!tiered_levels > 0);
  Alcotest.(check bool) "runs in a tiered level overlap" true
    (!overlapping > 0);
  L.close db

(* Under lazy leveling the last level must stay a single sorted run
   (disjoint files) even while upper levels stack overlapping runs. *)
let test_lazy_leveled_last_level () =
  let env = Env.create () in
  let db = L.open_store (tiny ~max_levels:3 O.Lazy_leveled) ~env ~dir:"db" in
  fill db 3000;
  L.check_invariants db;
  let last = L.level_tables db 2 in
  Alcotest.(check bool)
    (Printf.sprintf "last level populated (%d files)" (List.length last))
    true
    (List.length last >= 2);
  let sorted =
    List.sort (fun a b -> Ik.compare a.Table.smallest b.Table.smallest) last
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool) "last-level files disjoint" false
              (user_overlap a b))
        sorted)
    sorted;
  L.close db

(* ---------- worker-count byte-invariance per policy ---------- *)

(* Final on-storage state must be a pure function of the workload under
   every policy: the worker count shapes modeled time only. *)
let env_fingerprint env =
  Env.list env |> List.sort compare
  |> List.map (fun f ->
         f ^ "="
         ^ Digest.to_hex
             (Digest.string (Env.read_all env f ~hint:Device.Sequential_read)))
  |> String.concat "\n"

let policy_workload ~policy ~threads ~n =
  let env = Env.create () in
  let engine = Stores.engine_for_policy Stores.Hyperleveldb policy in
  let tweak (o : O.t) =
    {
      o with
      O.memtable_bytes = 2 * 1024;
      level_bytes_base = 8 * 1024;
      sstable_target_bytes = 4 * 1024;
      block_bytes = 512;
      compaction_threads = threads;
      compaction_policy = policy;
    }
  in
  let db = Stores.open_engine ~tweak ~env engine in
  for i = 0 to n - 1 do
    db.Dyn.d_put (key (i * 7919 mod n)) (value i);
    if i mod 13 = 0 then db.Dyn.d_delete (key (i * 31 mod n))
  done;
  db.Dyn.d_flush ();
  db.Dyn.d_check_invariants ();
  db.Dyn.d_compact_all ();
  db.Dyn.d_check_invariants ();
  db.Dyn.d_close ();
  env

let test_worker_invariance policy () =
  let a = env_fingerprint (policy_workload ~policy ~threads:1 ~n:1500) in
  let b = env_fingerprint (policy_workload ~policy ~threads:4 ~n:1500) in
  Alcotest.(check string) "1 vs 4 workers: byte-identical files" a b

let () =
  Alcotest.run "policy"
    [
      ( "trigger",
        [
          Alcotest.test_case "threshold boundary" `Quick test_threshold;
          Alcotest.test_case "per-policy scores" `Quick test_scores;
          Alcotest.test_case "layout and placement" `Quick test_layouts;
        ] );
      ( "layout in the engine",
        [
          Alcotest.test_case "tiered runs accumulate" `Quick
            test_tiered_runs_accumulate;
          Alcotest.test_case "lazy-leveled last level stays sorted" `Quick
            test_lazy_leveled_last_level;
        ] );
      ( "determinism",
        List.map
          (fun policy ->
            Alcotest.test_case
              (O.compaction_policy_name policy ^ " worker-count invariance")
              `Quick (test_worker_invariance policy))
          O.all_compaction_policies );
    ]
